// Package attack implements the adversaries of the paper:
//
//   - MaxDegree ("MaxNode" in §4.2): always delete the highest-degree
//     node — the strategy the paper found most effective at inflating
//     stretch (Fig. 10);
//   - NeighborOfMax (NMS): delete a random neighbor of the highest-degree
//     node — the strategy that consistently produced the largest degree
//     increases (Fig. 8), modeling well-protected hubs whose periphery is
//     easy to take down;
//   - Random: uniform random deletion, a non-adversarial control;
//   - MinDegree: always delete the lowest-degree node, a gentle control;
//   - LevelAttack: Algorithm 2 — the lower-bound adversary that walks an
//     (M+2)-ary tree level by level, pruning excess children, and forces
//     any M-degree-bounded locality-aware healer into Ω(log n) degree
//     increase (Theorem 2).
//
// A Strategy picks one victim per round; it returns NoTarget when it has
// nothing left to attack (the harness then stops the run).
package attack

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

// NoTarget is returned by Strategy.Next when the attack is finished.
const NoTarget = -1

// Strategy selects the next node to delete given the current healing
// state. Implementations may be stateful (LevelAttack is); a fresh
// Strategy value must be used per run.
type Strategy interface {
	// Name identifies the adversary in tables and figures.
	Name() string
	// Next returns the next victim, or NoTarget when the attack is done.
	Next(s *core.State, r *rng.RNG) int
}

// MaxDegree deletes the alive node with the largest degree (ties broken
// by lowest index).
type MaxDegree struct{}

// Name implements Strategy.
func (MaxDegree) Name() string { return "MaxNode" }

// Next implements Strategy.
func (MaxDegree) Next(s *core.State, _ *rng.RNG) int {
	return s.G.MaxDegreeNode() // -1 (== NoTarget) when the graph is empty
}

// NeighborOfMax deletes a uniformly random neighbor of the highest-degree
// node; when that node is isolated it deletes the node itself.
type NeighborOfMax struct{}

// Name implements Strategy.
func (NeighborOfMax) Name() string { return "NeighborOfMax" }

// Next implements Strategy.
func (NeighborOfMax) Next(s *core.State, r *rng.RNG) int {
	hub := s.G.MaxDegreeNode()
	if hub < 0 {
		return NoTarget
	}
	nbrs := s.G.Neighbors(hub)
	if len(nbrs) == 0 {
		return hub
	}
	return int(nbrs[r.Intn(len(nbrs))])
}

// Random deletes a uniformly random alive node.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "Random" }

// Next implements Strategy.
func (Random) Next(s *core.State, r *rng.RNG) int {
	alive := s.G.AliveNodes()
	if len(alive) == 0 {
		return NoTarget
	}
	return alive[r.Intn(len(alive))]
}

// MinDegree deletes the alive node with the smallest degree (ties broken
// by lowest index).
type MinDegree struct{}

// Name implements Strategy.
func (MinDegree) Name() string { return "MinNode" }

// Next implements Strategy.
func (MinDegree) Next(s *core.State, _ *rng.RNG) int {
	best, bestDeg := NoTarget, int(^uint(0)>>1)
	for _, v := range s.G.AliveNodes() {
		if d := s.G.Degree(v); d < bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// LevelAttack is Algorithm 2: on a complete (M+2)-ary tree it deletes
// nodes one level at a time from the leaves' parents up to the root.
// Before deleting a level-i node v it prunes v's "excess" downward
// neighbors — when v has accumulated more than M+2 of them through
// healing, the least-δ ones and their subtrees are removed by repeated
// leaf deletion (the Prune operation), so exactly the M+2 highest-δ
// children remain and Lemma 12 forces one of them to absorb another
// degree increase when v dies.
type LevelAttack struct {
	tree   *gen.KaryTree
	m      int
	levels [][]int // original node lists per level

	level   int // level currently being processed (D-1 down to 0)
	pos     int // cursor within levels[level]
	pruning bool
	pruneV  int // the node whose child is being pruned
	pruneC  int // the child whose subtree is being removed
	done    bool
}

// NewLevelAttack builds the adversary for the given tree, with M the
// assumed per-round degree-increase bound of the healer under attack.
// The tree should be (M+2)-ary for the Theorem 2 construction, but the
// adversary is well defined on any KaryTree.
func NewLevelAttack(tree *gen.KaryTree, m int) *LevelAttack {
	levels := make([][]int, tree.Depth+1)
	for v := 0; v < tree.G.N(); v++ {
		l := tree.Level[v]
		levels[l] = append(levels[l], v)
	}
	return &LevelAttack{
		tree:   tree,
		m:      m,
		levels: levels,
		level:  tree.Depth - 1,
	}
}

// Name implements Strategy.
func (a *LevelAttack) Name() string { return "LevelAttack" }

// Next implements Strategy.
func (a *LevelAttack) Next(s *core.State, _ *rng.RNG) int {
	for {
		if a.done || a.level < 0 {
			a.done = true
			return NoTarget
		}
		if a.pruning {
			if !s.G.Alive(a.pruneC) {
				a.pruning = false
				continue
			}
			return a.subtreeLeaf(s, a.pruneC, a.pruneV)
		}
		if a.pos >= len(a.levels[a.level]) {
			a.level--
			a.pos = 0
			continue
		}
		v := a.levels[a.level][a.pos]
		if !s.G.Alive(v) {
			a.pos++
			continue
		}
		children := a.downNeighbors(s, v)
		if len(children) > a.m+2 {
			a.pruneV = v
			a.pruneC = a.leastDeltaNode(s, children)
			a.pruning = true
			continue
		}
		a.pos++
		return v
	}
}

// downNeighbors returns v's alive neighbors whose original level is below
// v's in the tree: its current "children", whether original or adopted
// through healing.
func (a *LevelAttack) downNeighbors(s *core.State, v int) []int {
	var out []int
	for _, u := range s.G.Neighbors(v) {
		if a.tree.Level[u] > a.tree.Level[v] {
			out = append(out, int(u))
		}
	}
	return out
}

// leastDeltaNode picks the member with the smallest δ, ties broken by
// lowest index — the pruning order Algorithm 2 prescribes ("deleting
// those with least degree increases").
func (a *LevelAttack) leastDeltaNode(s *core.State, vs []int) int {
	best := vs[0]
	for _, v := range vs[1:] {
		if s.Delta(v) < s.Delta(best) {
			best = v
		}
	}
	return best
}

// subtreeLeaf returns the next victim of Prune(v, c): the node of c's
// side of the graph (reachable from c without crossing v) farthest from
// v, ties broken by lowest index. On a tree this is always a leaf, so its
// deletion needs no healing edges; on the cyclic graphs a naive healer
// can produce, it is still the most peripheral node of the subtree.
func (a *LevelAttack) subtreeLeaf(s *core.State, c, v int) int {
	type qe struct{ node, dist int }
	seen := map[int]struct{}{c: {}, v: {}}
	queue := []qe{{c, 0}}
	best, bestDist := c, 0
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if e.dist > bestDist || (e.dist == bestDist && e.node < best) {
			best, bestDist = e.node, e.dist
		}
		for _, u32 := range s.G.Neighbors(e.node) {
			u := int(u32)
			if _, ok := seen[u]; ok {
				continue
			}
			seen[u] = struct{}{}
			queue = append(queue, qe{u, e.dist + 1})
		}
	}
	return best
}
