// Package trace records self-healing executions as event streams that can
// be summarized, serialized, and replayed. A replayed trace reconstructs
// the exact final topology and healing forest, which makes traces a
// debugging and regression tool: any divergence between a live run and
// its own replay indicates unrecorded mutation, and traces of failing
// runs can be archived and replayed later.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

// Kind enumerates recorded event types.
type Kind uint8

const (
	// KindRemove is a node deletion.
	KindRemove Kind = iota
	// KindEdge is a healing edge (possibly G-only for shortcuts).
	KindEdge
	// KindAdopt is a component-label change.
	KindAdopt
	// KindJoin is a node arrival.
	KindJoin
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRemove:
		return "remove"
	case KindEdge:
		return "edge"
	case KindAdopt:
		return "adopt"
	case KindJoin:
		return "join"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded mutation.
type Event struct {
	Kind   Kind
	Node   int    // Remove: deleted node; Adopt/Join: the subject node
	U, V   int    // Edge endpoints
	NewInG bool   // Edge: G gained the edge
	InGp   bool   // Edge: G′ gained the edge
	ID     uint64 // Adopt: the adopted label
	Attach []int  // Join: attachment targets
}

// Recorder captures events from a core.State via its hooks.
type Recorder struct {
	events []Event
}

// Attach installs the recorder on s (replacing any existing hooks) and
// returns it.
func Attach(s *core.State) *Recorder {
	r := &Recorder{}
	s.SetHooks(&core.Hooks{
		OnRemove: func(x int) {
			r.events = append(r.events, Event{Kind: KindRemove, Node: x})
		},
		OnEdge: func(u, v int, newInG, inGp bool) {
			r.events = append(r.events, Event{Kind: KindEdge, U: u, V: v, NewInG: newInG, InGp: inGp})
		},
		OnAdopt: func(v int, id uint64) {
			r.events = append(r.events, Event{Kind: KindAdopt, Node: v, ID: id})
		},
		OnJoin: func(v int, attach []int) {
			r.events = append(r.events, Event{
				Kind: KindJoin, Node: v, Attach: append([]int(nil), attach...),
			})
		},
	})
	return r
}

// Events returns the recorded stream (not a copy; treat as read-only).
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Summary renders per-kind counts, e.g. "events=120 remove=40 edge=55 …".
func (r *Recorder) Summary() string {
	counts := map[Kind]int{}
	for _, e := range r.events {
		counts[e.Kind]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d", len(r.events))
	for _, k := range []Kind{KindRemove, KindEdge, KindAdopt, KindJoin} {
		fmt.Fprintf(&b, " %s=%d", k, counts[k])
	}
	return b.String()
}

// Replay applies the event stream to a copy of the initial graph and
// returns the reconstructed final topology and healing forest. It errors
// on structurally impossible events (dead endpoints, out-of-range nodes),
// which is how a corrupted or mismatched trace announces itself.
func Replay(initial *graph.Graph, events []Event) (g, gp *graph.Graph, err error) {
	g = initial.Clone()
	gp = graph.New(initial.N())
	for v := 0; v < initial.N(); v++ {
		if !initial.Alive(v) {
			gp.RemoveNode(v)
		}
	}
	for i, e := range events {
		switch e.Kind {
		case KindRemove:
			if !g.Alive(e.Node) {
				return nil, nil, fmt.Errorf("trace: event %d removes dead node %d", i, e.Node)
			}
			g.RemoveNode(e.Node)
			gp.RemoveNode(e.Node)
		case KindEdge:
			if !g.Alive(e.U) || !g.Alive(e.V) {
				return nil, nil, fmt.Errorf("trace: event %d edge %d-%d touches a dead node", i, e.U, e.V)
			}
			if e.NewInG {
				if !g.AddEdge(e.U, e.V) {
					return nil, nil, fmt.Errorf("trace: event %d re-adds G edge %d-%d", i, e.U, e.V)
				}
			} else if !g.HasEdge(e.U, e.V) {
				return nil, nil, fmt.Errorf("trace: event %d expects existing G edge %d-%d", i, e.U, e.V)
			}
			if e.InGp {
				gp.AddEdge(e.U, e.V)
			}
		case KindAdopt:
			// Labels are not part of topology replay; validated elsewhere.
		case KindJoin:
			v := g.AddNode()
			if gp.AddNode() != v || v != e.Node {
				return nil, nil, fmt.Errorf("trace: event %d join index mismatch (%d vs %d)", i, v, e.Node)
			}
			for _, u := range e.Attach {
				if !g.Alive(u) {
					return nil, nil, fmt.Errorf("trace: event %d joins to dead node %d", i, u)
				}
				g.AddEdge(v, u)
			}
		default:
			return nil, nil, fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
		}
	}
	return g, gp, nil
}
