package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindRemove: "remove", KindEdge: "edge", KindAdopt: "adopt", KindJoin: "join",
	} {
		if k.String() != want {
			t.Errorf("Kind %d String = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should render its number")
	}
}

// The headline property: replaying a recorded run reconstructs the live
// topology and healing forest exactly, across healers and churn.
func TestReplayReconstructsRun(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(40)
		initial := gen.BarabasiAlbert(n, 2, rng.New(seed+1))
		s := core.NewState(initial.Clone(), rng.New(seed+2))
		rec := Attach(s)
		joinR := rng.New(seed + 3)
		healers := []core.Healer{core.DASH{}, core.SDASH{}, core.SDASHFull{}}
		h := healers[r.Intn(len(healers))]
		for step := 0; step < n; step++ {
			alive := s.G.AliveNodes()
			if len(alive) == 0 {
				break
			}
			if r.Intn(4) == 0 {
				s.Join([]int{alive[r.Intn(len(alive))]}, joinR)
			} else {
				s.DeleteAndHeal(alive[r.Intn(len(alive))], h)
			}
		}
		g, gp, err := Replay(initial, rec.Events())
		if err != nil {
			return false
		}
		return g.Equal(s.G) && gp.Equal(s.Gp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	s := core.NewState(gen.Star(6), rng.New(1))
	rec := Attach(s)
	s.DeleteAndHeal(0, core.DASH{})
	sum := rec.Summary()
	if !strings.Contains(sum, "remove=1") {
		t.Errorf("summary missing removal: %s", sum)
	}
	if !strings.Contains(sum, "edge=4") { // binary tree over 5 leaves
		t.Errorf("summary edge count wrong: %s", sum)
	}
	if rec.Len() == 0 {
		t.Error("no events recorded")
	}
}

func TestReplayErrorPaths(t *testing.T) {
	initial := gen.Line(3)
	cases := []struct {
		name   string
		events []Event
	}{
		{"remove dead", []Event{{Kind: KindRemove, Node: 1}, {Kind: KindRemove, Node: 1}}},
		{"edge to dead", []Event{{Kind: KindRemove, Node: 0}, {Kind: KindEdge, U: 0, V: 2, NewInG: true}}},
		{"re-add edge", []Event{{Kind: KindEdge, U: 0, V: 1, NewInG: true}}},
		{"phantom existing edge", []Event{{Kind: KindEdge, U: 0, V: 2, NewInG: false, InGp: true}}},
		{"join to dead", []Event{{Kind: KindRemove, Node: 0}, {Kind: KindJoin, Node: 3, Attach: []int{0}}}},
		{"join index mismatch", []Event{{Kind: KindJoin, Node: 7}}},
		{"unknown kind", []Event{{Kind: Kind(42)}}},
	}
	for _, c := range cases {
		if _, _, err := Replay(initial, c.events); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	initial := gen.Ring(4)
	g, gp, err := Replay(initial, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(initial) {
		t.Error("empty trace should reproduce the initial graph")
	}
	if gp.NumEdges() != 0 {
		t.Error("empty trace healing forest should be empty")
	}
}

func TestAdoptEventsRecorded(t *testing.T) {
	s := core.NewState(gen.Star(5), rng.New(2))
	rec := Attach(s)
	s.DeleteAndHeal(0, core.DASH{})
	adopts := 0
	for _, e := range rec.Events() {
		if e.Kind == KindAdopt {
			adopts++
			if e.ID == 0 {
				t.Error("adopt event with zero label")
			}
		}
	}
	if adopts == 0 {
		t.Error("star heal must relabel someone")
	}
}

// TestJSONLRoundTrip records a real mixed run (deletions, healing edges,
// adoptions, joins), pushes it through the JSONL codec, and verifies the
// decoded stream both equals the original and still replays to the
// exact final topology.
func TestJSONLRoundTrip(t *testing.T) {
	master := rng.New(31)
	initial := gen.BarabasiAlbert(48, 3, master.Split())
	s := core.NewState(initial.Clone(), master.Split())
	rec := Attach(s)
	att := attack.NeighborOfMax{}
	attR := master.Split()
	joinR := master.Split()
	for i := 0; i < 20; i++ {
		if i%4 == 3 {
			alive := s.G.AliveNodes()
			s.Join([]int{alive[0], alive[len(alive)/2]}, joinR)
			continue
		}
		v := att.Next(s, attR)
		if v == attack.NoTarget {
			break
		}
		s.DeleteAndHeal(v, core.DASH{})
	}

	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, rec.Events()) {
		t.Fatalf("decoded stream differs:\n got %v\nwant %v", decoded, rec.Events())
	}
	g, gp, err := Replay(initial, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(s.G) || !gp.Equal(s.Gp) {
		t.Fatal("replay of the decoded stream diverged from the live run")
	}
}

func TestDecodeJSONLErrors(t *testing.T) {
	cases := []string{
		`{"kind":"warp"}`,                // unknown kind
		`{"kind":"adopt","id":"notnum"}`, // bad label
		`{"kind":`,                       // malformed JSON
	}
	for _, c := range cases {
		if _, err := DecodeJSONL(strings.NewReader(c)); err == nil {
			t.Errorf("DecodeJSONL(%q) should fail", c)
		}
	}
	// Blank lines are tolerated.
	ev, err := DecodeJSONL(strings.NewReader("\n{\"kind\":\"remove\",\"node\":3}\n\n"))
	if err != nil || len(ev) != 1 || ev[0].Kind != KindRemove || ev[0].Node != 3 {
		t.Fatalf("blank-line stream: %v %v", ev, err)
	}
}

// Whitespace-only lines and CRLF line endings are transport noise, not
// corruption: hand-piped and curl'd streams must decode cleanly.
func TestDecodeJSONLWhitespaceTolerance(t *testing.T) {
	cases := map[string]string{
		"crlf":            "{\"kind\":\"remove\",\"node\":3}\r\n{\"kind\":\"join\",\"node\":9,\"attach\":[3]}\r\n",
		"spaces-only":     "   \n{\"kind\":\"remove\",\"node\":3}\n\t \n{\"kind\":\"join\",\"node\":9,\"attach\":[3]}\n",
		"tab-indented":    "\t{\"kind\":\"remove\",\"node\":3}\n {\"kind\":\"join\",\"node\":9,\"attach\":[3]}\n",
		"trailing-spaces": "{\"kind\":\"remove\",\"node\":3}  \r\n{\"kind\":\"join\",\"node\":9,\"attach\":[3]}   \n",
	}
	for name, input := range cases {
		ev, err := DecodeJSONL(strings.NewReader(input))
		if err != nil {
			t.Errorf("%s: DecodeJSONL failed: %v", name, err)
			continue
		}
		if len(ev) != 2 || ev[0].Kind != KindRemove || ev[0].Node != 3 ||
			ev[1].Kind != KindJoin || ev[1].Node != 9 {
			t.Errorf("%s: decoded %v", name, ev)
		}
	}
	// An error on a later line still reports the physical line number,
	// counting the skipped whitespace-only lines.
	_, err := DecodeJSONL(strings.NewReader("\r\n \n{\"kind\":\"warp\"}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want a line-3 error, got %v", err)
	}
}
