package trace

// JSONL serialization: one event per line, so traces stream to disk
// while a scenario runs, survive partial writes (every complete line is
// a valid record), and are greppable/jq-able. cmd/scenario emits these;
// DecodeJSONL + Replay turns an archived stream back into the exact
// final topology.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// jsonEvent is the wire form of Event. Component labels are uint64s
// drawn from the full range, so they are carried as decimal strings —
// JSON numbers would silently lose precision past 2⁵³.
type jsonEvent struct {
	Kind   string `json:"kind"`
	Node   int    `json:"node,omitempty"`
	U      int    `json:"u,omitempty"`
	V      int    `json:"v,omitempty"`
	NewInG bool   `json:"new_in_g,omitempty"`
	InGp   bool   `json:"in_gp,omitempty"`
	ID     string `json:"id,omitempty"`
	Attach []int  `json:"attach,omitempty"`
}

// EncodeJSONL writes the event stream to w, one JSON object per line.
func EncodeJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline JSONL needs
	for i, e := range events {
		je := jsonEvent{Kind: e.Kind.String(), Node: e.Node, U: e.U, V: e.V,
			NewInG: e.NewInG, InGp: e.InGp, Attach: e.Attach}
		if e.Kind == KindAdopt {
			je.ID = strconv.FormatUint(e.ID, 10)
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// A Decoder incrementally decodes a JSONL event stream — the form a
// live HTTP subscriber needs, where events must be consumed as lines
// arrive rather than after EOF.
type Decoder struct {
	sc   *bufio.Scanner
	line int
}

// NewDecoder wraps r in an incremental JSONL event decoder.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Decoder{sc: sc}
}

// Next returns the next event, or io.EOF at end of stream. Blank and
// whitespace-only lines are skipped, and a trailing \r (CRLF transport:
// curl pipelines, Windows editors) is tolerated; anything else malformed
// is an error naming the line.
func (d *Decoder) Next() (Event, error) {
	for d.sc.Scan() {
		d.line++
		raw := bytes.TrimSpace(d.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return Event{}, fmt.Errorf("trace: line %d: %w", d.line, err)
		}
		e := Event{Node: je.Node, U: je.U, V: je.V,
			NewInG: je.NewInG, InGp: je.InGp, Attach: je.Attach}
		switch je.Kind {
		case KindRemove.String():
			e.Kind = KindRemove
		case KindEdge.String():
			e.Kind = KindEdge
		case KindAdopt.String():
			e.Kind = KindAdopt
			id, err := strconv.ParseUint(je.ID, 10, 64)
			if err != nil {
				return Event{}, fmt.Errorf("trace: line %d: bad adopt id %q", d.line, je.ID)
			}
			e.ID = id
		case KindJoin.String():
			e.Kind = KindJoin
		default:
			return Event{}, fmt.Errorf("trace: line %d: unknown kind %q", d.line, je.Kind)
		}
		return e, nil
	}
	if err := d.sc.Err(); err != nil {
		return Event{}, fmt.Errorf("trace: reading stream: %w", err)
	}
	return Event{}, io.EOF
}

// DecodeJSONL parses a complete stream written by EncodeJSONL, with the
// same line handling as Decoder.Next.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	d := NewDecoder(r)
	for {
		e, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
