// Package par provides the one concurrency primitive this repository
// needs: a deterministic fan-out of an indexed work list across a fixed
// worker pool. Both the graph layer's all-sources BFS sweeps and the
// experiment engine's trial loop are built on it.
package par

import (
	"sync"
	"sync/atomic"
)

// Do runs body(w, i) for every item i in 0..items-1 across workers
// goroutines, where w identifies the worker (0..workers-1) so bodies can
// own per-worker scratch. Items are handed out by an atomic counter;
// bodies must write only item-owned (or worker-owned) state, which makes
// the overall result independent of scheduling — callers get the same
// answer at any worker count. workers is clamped to items; workers <= 1
// runs every item inline on the caller's goroutine.
func Do(items, workers int, body func(w, i int)) {
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		for i := 0; i < items; i++ {
			body(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= items {
					return
				}
				body(w, i)
			}
		}(w)
	}
	wg.Wait()
}
