package metrics

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// damage deletes a few nodes and patches the survivors with an arbitrary
// edge so the graph stays connected but distances stretch.
func damage(g *graph.Graph, r *rng.RNG, kills int) {
	for i := 0; i < kills && g.NumAlive() > 3; i++ {
		alive := g.AliveNodes()
		v := alive[r.Intn(len(alive))]
		nbrs := g.AppendNeighbors(nil, v)
		g.RemoveNode(v)
		// Re-join the orphans in a line so connectivity survives.
		for j := 0; j+1 < len(nbrs); j++ {
			if !g.HasEdge(nbrs[j], nbrs[j+1]) {
				g.AddEdge(nbrs[j], nbrs[j+1])
			}
		}
	}
}

// With every alive node as a source, the sampled estimator sees every
// pair (in both orders), so Max and Mean must equal the exact values.
func TestSampledStretchAllSourcesMatchesExact(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		r := rng.New(seed)
		g := gen.BarabasiAlbert(64, 2, r.Split())
		exact := NewStretch(g)
		sampled := NewSampledStretch(g, 0, r.Split()) // k<=0: all sources
		damage(g, r.Split(), 10)

		er := exact.Measure(g)
		sr := sampled.Measure(g)
		if sr.Max != er.Max {
			t.Fatalf("seed %d: sampled max %v, exact %v", seed, sr.Max, er.Max)
		}
		if math.Abs(sr.Mean-er.Mean) > 1e-12 {
			t.Fatalf("seed %d: sampled mean %v, exact %v", seed, sr.Mean, er.Mean)
		}
	}
}

// A k-source estimate only sees a subset of the pairs, so its maximum
// must bracket from below: 1 <= sampled.Max <= exact.Max.
func TestSampledStretchBracketsExact(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.New(seed)
		g := gen.BarabasiAlbert(96, 2, r.Split())
		exact := NewStretch(g)
		sampled := NewSampledStretch(g, 8, r.Split())
		damage(g, r.Split(), 15)

		er := exact.Measure(g)
		sr := sampled.Measure(g)
		if sr.Max < 1 || sr.Max > er.Max {
			t.Fatalf("seed %d: sampled max %v outside [1, exact %v]", seed, sr.Max, er.Max)
		}
		if sr.MeanLo > sr.Mean || sr.MeanHi < sr.Mean {
			t.Fatalf("seed %d: CI [%v,%v] does not contain mean %v",
				seed, sr.MeanLo, sr.MeanHi, sr.Mean)
		}
		if !sr.Sampled {
			t.Fatalf("seed %d: SampledStretch result not flagged as sampled", seed)
		}
	}
}

// Below the threshold AutoStretch must produce exactly the result the
// exact all-pairs estimator produces (and say so).
func TestAutoStretchFallsBackToExact(t *testing.T) {
	r := rng.New(7)
	g := gen.BarabasiAlbert(48, 2, r.Split())
	auto := NewAutoStretch(g, 1000, 4, r.Split())
	if auto.Sampled() {
		t.Fatalf("n=48 under threshold 1000 should use the exact mode")
	}
	exact := NewStretch(g)
	damage(g, r.Split(), 8)

	ar := auto.Measure(g)
	er := exact.Measure(g)
	if ar.Sampled {
		t.Fatalf("exact-mode result flagged as sampled")
	}
	if ar.Max != er.Max || ar.Mean != er.Mean || ar.Pairs != er.Pairs {
		t.Fatalf("auto %+v != exact %+v", ar.Result, er)
	}
	if ar.MeanLo != ar.Mean || ar.MeanHi != ar.Mean {
		t.Fatalf("exact-mode CI should collapse to the mean, got [%v,%v]", ar.MeanLo, ar.MeanHi)
	}
}

// Above the threshold AutoStretch must switch to sampling.
func TestAutoStretchSamplesAboveThreshold(t *testing.T) {
	r := rng.New(8)
	g := gen.BarabasiAlbert(128, 2, r.Split())
	auto := NewAutoStretch(g, 64, 8, r.Split())
	if !auto.Sampled() {
		t.Fatalf("n=128 over threshold 64 should use the sampled mode")
	}
	res := auto.Measure(g)
	if !res.Sampled || res.Max != 1 {
		t.Fatalf("undamaged graph should measure identity stretch, got %+v", res)
	}
}

// SampledDiameter with all sources is the exact diameter; with fewer it
// is a lower bound.
func TestSampledDiameter(t *testing.T) {
	r := rng.New(9)
	g := gen.WattsStrogatz(80, 4, 0.05, r.Split())
	exactD := g.Diameter()

	all := SampledDiameter(g, 0, r.Split())
	if !all.Exact || all.Diameter != exactD {
		t.Fatalf("all-source estimate %+v, exact diameter %d", all, exactD)
	}
	few := SampledDiameter(g, 6, r.Split())
	if few.Exact {
		t.Fatalf("6-source estimate on 80 nodes claimed exactness")
	}
	if few.Diameter < 1 || few.Diameter > exactD {
		t.Fatalf("6-source diameter %d outside [1, %d]", few.Diameter, exactD)
	}
	if few.EccLo > few.MeanEcc || few.EccHi < few.MeanEcc {
		t.Fatalf("eccentricity CI [%v,%v] does not contain mean %v",
			few.EccLo, few.EccHi, few.MeanEcc)
	}
	if few.Sources != 6 {
		t.Fatalf("expected 6 sources, got %d", few.Sources)
	}
}

// Stretch line coverage for the sampled estimator under churn: a node
// joined after the snapshot must be skipped, a dead source must be
// skipped, and neither may panic.
func TestSampledStretchSurvivesChurn(t *testing.T) {
	r := rng.New(10)
	g := gen.BarabasiAlbert(32, 2, r.Split())
	sampled := NewSampledStretch(g, 5, r.Split())
	// Kill the first source.
	src := sampled.sources[0]
	nbrs := g.AppendNeighbors(nil, src)
	g.RemoveNode(src)
	for j := 0; j+1 < len(nbrs); j++ {
		if !g.HasEdge(nbrs[j], nbrs[j+1]) {
			g.AddEdge(nbrs[j], nbrs[j+1])
		}
	}
	// Grow the graph past the snapshot size.
	v := g.AddNode()
	g.AddEdge(v, nbrs[0])

	res := sampled.Measure(g)
	if res.Sources != 4 {
		t.Fatalf("expected 4 surviving sources, got %d", res.Sources)
	}
	if math.IsInf(res.Max, 1) {
		t.Fatalf("patched graph should not report disconnection: %+v", res)
	}
}

// TestSampledBFSScratchPooled pins the sync.Pool satellite: once the
// pool is warm, a SampledDiameter sweep over a large graph must not
// allocate the O(n) dist row again — the per-call allocation budget
// stays far below 4 bytes per node.
func TestSampledBFSScratchPooled(t *testing.T) {
	const n = 50_000
	r := rng.New(5)
	g := gen.BarabasiAlbert(n, 3, r)
	SampledDiameter(g, 4, r) // warm the pool

	bench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SampledDiameter(g, 4, r)
		}
	})
	perOp := bench.AllocedBytesPerOp()
	if perOp > int64(n) {
		t.Fatalf("SampledDiameter allocates %d B/op on a %d-node graph; the BFS scratch is not being pooled", perOp, n)
	}

	st := NewSampledStretch(g, 4, r)
	st.Measure(g) // warm
	bench = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.Measure(g)
		}
	})
	if perOp := bench.AllocedBytesPerOp(); perOp > int64(n) {
		t.Fatalf("SampledStretch.Measure allocates %d B/op on a %d-node graph; the BFS scratch is not being pooled", perOp, n)
	}
}
