package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0}, // sub-µs truncates to bucket 0
		{time.Microsecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10},       // 1000µs: bit length 10
		{time.Second, 20},            // 1e6µs: bit length 20
		{time.Hour, histBuckets - 1}, // clamped to the top bucket
		{-time.Second, 0},            // negative clamps to zero
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.d)
		s := h.Snapshot()
		got := -1
		for b, n := range s.Counts {
			if n == 1 {
				got = b
			}
		}
		if got != c.want {
			t.Errorf("Observe(%v) landed in bucket %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v", got)
	}
	// 90 fast observations, 10 slow ones: p50 must bound the fast
	// latency, p99 the slow one, and both are upper bounds.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 100*time.Microsecond || p50 >= 50*time.Millisecond {
		t.Errorf("p50 = %v, want a bound on ~100µs below the slow tail", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 50*time.Millisecond {
		t.Errorf("p99 = %v, want ≥ the 50ms tail", p99)
	}
	if p0 := s.Quantile(0); p0 < 100*time.Microsecond || p0 >= 50*time.Millisecond {
		t.Errorf("p0 = %v, want the fast bucket's bound", p0)
	}
	if mean := s.Mean(); mean < 100*time.Microsecond || mean > 50*time.Millisecond {
		t.Errorf("mean = %v outside the observation range", mean)
	}
	if s.Count != 100 {
		t.Errorf("count = %d, want 100", s.Count)
	}
}

// The histogram is written from the apply loop and read from handler
// goroutines; hammer both sides under -race.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i+w) * time.Microsecond)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := h.Snapshot()
				_ = s.Quantile(0.95)
				_ = s.Mean()
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 4000 {
		t.Fatalf("lost observations: count = %d, want 4000", got)
	}
}
