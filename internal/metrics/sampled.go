package metrics

// Sampled metrics: the exact stretch and diameter computations cost a BFS
// per node (O(n·m)), which is fine at the paper's sizes (n ≤ a few
// thousand) and hopeless at the scenario engine's (n = 10⁵–10⁶). The
// estimators here run k random-source BFS sweeps instead — O(k·m) — and
// report normal-approximation confidence intervals over the per-source
// statistics (stats.Summary.CI95), so large-scale scenario checkpoints
// state their uncertainty instead of hiding it.
//
// The estimates are conservative in a useful direction: a k-source
// stretch maximum and a k-source diameter are both lower bounds on their
// exact counterparts (every sampled pair is a real pair), and they equal
// the exact values when the sources cover every alive node — which is
// exactly what the tests pin down.

import (
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
)

// bfsScratch pools BFS dist/queue buffers across sampled measurements.
// server.MeasureStretch and large-scale scenario checkpoints call the
// samplers repeatedly on 10⁵–10⁷-node graphs; without the pool every
// call allocates an n-length dist row (4 MB at n = 10⁶) that is garbage
// one call later. Buffers are taken per Measure call and returned
// before it ends, so pooling does not change any concurrency contract.
type bfsScratch struct {
	dist  []int32
	queue []int32
	alive []int // source-sampling buffer (SampledDiameter)
}

var bfsPool = sync.Pool{New: func() any { return new(bfsScratch) }}

// getBFSScratch returns a pooled scratch with dist sized to n.
func getBFSScratch(n int) *bfsScratch {
	b := bfsPool.Get().(*bfsScratch)
	if cap(b.dist) < n {
		b.dist = make([]int32, n)
	}
	b.dist = b.dist[:n]
	return b
}

// DefaultSampleThreshold is the alive-node count at or above which the
// scenario engine switches from exact to sampled metrics.
const DefaultSampleThreshold = 4096

// DefaultSampleSources is the number of random BFS sources a sampled
// measurement uses when the caller does not override it.
const DefaultSampleSources = 16

// SampledResult is a stretch measurement estimated from k BFS sources.
type SampledResult struct {
	Result
	// MeanLo/MeanHi is the 95% confidence interval for Mean, over the
	// per-source mean ratios. Equal to Mean when only one source
	// contributed (or the measurement was exact).
	MeanLo, MeanHi float64
	// Sources is how many BFS sources contributed surviving pairs.
	Sources int
	// Sampled reports whether this measurement was estimated (true) or
	// exact (false; AutoStretch below the threshold).
	Sampled bool
}

// SampledStretch measures path dilation like Stretch, but only over pairs
// (s, v) whose first endpoint is one of k random sources fixed at
// construction time. Snapshot cost is O(k·m) time and O(k·n) memory. Not
// safe for concurrent use.
type SampledStretch struct {
	sources []int
	base    [][]int32 // one original-distance row per source
}

// NewSampledStretch snapshots the distances from k random alive sources
// of g (all alive nodes when k <= 0 or k exceeds the alive count — the
// estimate is then exact). Sources are drawn without replacement from r.
func NewSampledStretch(g *graph.Graph, k int, r *rng.RNG) *SampledStretch {
	st := &SampledStretch{sources: sampleAlive(g, k, r)}
	st.base = make([][]int32, len(st.sources))
	for i, s := range st.sources {
		st.base[i] = g.BFS(s)
	}
	return st
}

// sampleAlive draws min(k, alive) distinct alive nodes of g uniformly
// without replacement (partial Fisher–Yates), returned sorted. k <= 0
// selects every alive node.
func sampleAlive(g *graph.Graph, k int, r *rng.RNG) []int {
	return pickSources(g.AliveNodes(), k, r)
}

// pickSources partially shuffles alive in place and returns the k
// chosen sources (sorted), or all of alive when k <= 0 or k exceeds its
// length.
func pickSources(alive []int, k int, r *rng.RNG) []int {
	if k <= 0 || k >= len(alive) {
		return alive
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(alive)-i)
		alive[i], alive[j] = alive[j], alive[i]
	}
	picked := alive[:k]
	sortInts(picked)
	return picked
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Measure estimates the stretch of cur over the sampled source rows.
// Sources that have since died are skipped; nodes that joined after the
// snapshot have no original distance and are skipped, exactly as in
// Stretch.Measure. Pairs now disconnected contribute +Inf to Max.
func (st *SampledStretch) Measure(cur *graph.Graph) SampledResult {
	res := SampledResult{Result: Result{Max: 1}, Sampled: true}
	var sum float64
	var perSourceMeans []float64
	scratch := getBFSScratch(cur.N())
	defer bfsPool.Put(scratch)
	for i, src := range st.sources {
		if !cur.Alive(src) {
			continue
		}
		scratch.queue = cur.BFSInto(src, scratch.dist, scratch.queue)
		row := st.base[i]
		var srcSum float64
		srcPairs := 0
		for v, orig := range row {
			if v == src || orig <= 0 || !cur.Alive(v) {
				continue
			}
			res.Pairs++
			if scratch.dist[v] < 0 {
				res.Disconnected++
				res.Max = math.Inf(1)
				continue
			}
			ratio := float64(scratch.dist[v]) / float64(orig)
			if ratio > res.Max {
				res.Max = ratio
			}
			sum += ratio
			srcSum += ratio
			srcPairs++
		}
		if srcPairs > 0 {
			res.Sources++
			perSourceMeans = append(perSourceMeans, srcSum/float64(srcPairs))
		}
	}
	if ok := res.Pairs - res.Disconnected; ok > 0 {
		res.Mean = sum / float64(ok)
	} else if res.Pairs == 0 {
		res.Mean = 1
	}
	res.MeanLo, res.MeanHi = res.Mean, res.Mean
	if len(perSourceMeans) > 1 {
		res.MeanLo, res.MeanHi = stats.Summarize(perSourceMeans).CI95()
	}
	return res
}

// AutoStretch picks the measurement mode by size: graphs with fewer than
// threshold alive nodes at snapshot time get the exact all-pairs Stretch,
// larger ones the k-source SampledStretch. This is the policy the
// scenario engine applies at every trial start.
type AutoStretch struct {
	exact   *Stretch
	sampled *SampledStretch
}

// NewAutoStretch snapshots g with the mode the threshold selects.
// threshold <= 0 means DefaultSampleThreshold; k <= 0 means
// DefaultSampleSources.
func NewAutoStretch(g *graph.Graph, threshold, k int, r *rng.RNG) *AutoStretch {
	if threshold <= 0 {
		threshold = DefaultSampleThreshold
	}
	if k <= 0 {
		k = DefaultSampleSources
	}
	if g.NumAlive() < threshold {
		return &AutoStretch{exact: NewStretch(g)}
	}
	return &AutoStretch{sampled: NewSampledStretch(g, k, r)}
}

// Sampled reports whether measurements are estimates (true) or exact.
func (a *AutoStretch) Sampled() bool { return a.sampled != nil }

// Measure measures cur in the mode chosen at construction. Exact results
// are wrapped in a SampledResult with Sampled=false and a collapsed CI.
func (a *AutoStretch) Measure(cur *graph.Graph) SampledResult {
	if a.exact != nil {
		r := a.exact.Measure(cur)
		return SampledResult{Result: r, MeanLo: r.Mean, MeanHi: r.Mean}
	}
	return a.sampled.Measure(cur)
}

// DiameterEstimate is a k-source approximation of the diameter of the
// alive part of a graph.
type DiameterEstimate struct {
	// Diameter is the largest finite eccentricity among the sources — a
	// lower bound on the true diameter, equal to it when Exact.
	Diameter int
	// MeanEcc is the mean source eccentricity with its 95% CI; for a
	// rough radius/diameter picture without the full O(n·m) sweep.
	MeanEcc      float64
	EccLo, EccHi float64
	// Sources is how many alive sources were swept.
	Sources int
	// Exact is true when every alive node served as a source.
	Exact bool
}

// SampledDiameter estimates g's diameter from k random alive sources
// drawn from r (all alive nodes when k <= 0 or k exceeds the alive
// count, making the result exact). Disconnected pairs are ignored, as in
// Diameter.
func SampledDiameter(g *graph.Graph, k int, r *rng.RNG) DiameterEstimate {
	scratch := getBFSScratch(g.N())
	defer bfsPool.Put(scratch)
	scratch.alive = g.AppendAliveNodes(scratch.alive[:0])
	sources := pickSources(scratch.alive, k, r)
	est := DiameterEstimate{Exact: len(sources) == g.NumAlive()}
	if len(sources) == 0 {
		return est
	}
	eccs := make([]float64, 0, len(sources))
	for _, src := range sources {
		scratch.queue = g.BFSInto(src, scratch.dist, scratch.queue)
		ecc := int32(0)
		for _, d := range scratch.dist {
			if d > ecc {
				ecc = d
			}
		}
		if int(ecc) > est.Diameter {
			est.Diameter = int(ecc)
		}
		eccs = append(eccs, float64(ecc))
	}
	est.Sources = len(sources)
	s := stats.Summarize(eccs)
	est.MeanEcc = s.Mean
	est.EccLo, est.EccHi = s.CI95()
	return est
}
