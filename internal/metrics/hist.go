package metrics

// Latency histogram: the daemon records a heal latency per served request
// from inside its single-writer apply loop while /metrics handlers read
// concurrently, so the histogram is lock-free — power-of-two microsecond
// buckets held in atomics. Quantiles come from the bucket upper bounds,
// which makes them conservative (never under-reported) with at most 2×
// resolution error per bucket — the right trade for a service histogram
// that must cost nanoseconds to update.

import (
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count: bucket i counts observations with
// microsecond magnitude 2^(i-1)..2^i (bucket 0 is <1µs), so the top
// bucket starts at 2^30 µs ≈ 18 minutes — far past any heal latency.
const histBuckets = 32

// Histogram is a fixed-shape, concurrency-safe latency histogram. The
// zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sumUS  atomic.Uint64
}

// bucketOf maps a duration to its bucket index: the bit length of the
// microsecond count, clamped to the top bucket.
func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := 0
	for us > 0 {
		us >>= 1
		b++
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper bound of bucket b.
func bucketUpper(b int) time.Duration {
	return time.Duration(uint64(1)<<uint(b)-1) * time.Microsecond
}

// Observe records one latency. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(uint64(d / time.Microsecond))
}

// HistSnapshot is a consistent-enough copy of a histogram: each field is
// read atomically, so totals may disagree by in-flight observations but
// never by torn reads.
type HistSnapshot struct {
	Counts []uint64 `json:"counts"` // per-bucket counts, bucket i spans (2^(i-1), 2^i] µs
	Count  uint64   `json:"count"`
	SumUS  uint64   `json:"sum_us"`
}

// Snapshot copies the histogram's current counters.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Counts: make([]uint64, histBuckets)}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumUS = h.sumUS.Load()
	return s
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// observed latencies: the upper edge of the bucket holding the q-th
// observation. Zero when nothing was observed.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based; q=1 is the max.
	rank := uint64(q*float64(s.Count-1)) + 1
	var cum uint64
	for b, c := range s.Counts {
		cum += c
		if cum >= rank {
			return bucketUpper(b)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Mean returns the exact mean latency (sums are tracked in microseconds).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumUS/s.Count) * time.Microsecond
}
