// Package metrics computes the quantities the paper's evaluation reports:
// stretch (§4.6.1) — the worst pairwise dilation of distances in the
// healed network relative to the original network — and degree
// statistics.
package metrics

import (
	"math"

	"repro/internal/graph"
)

// Stretch measures path dilation against a snapshot of the original
// network taken at construction time. A Stretch value is not safe for
// concurrent use: Measure reuses internal BFS scratch across calls.
type Stretch struct {
	base  [][]int32 // original all-pairs distances
	dist  []int32   // BFS scratch, reused across Measure calls
	queue []int32
}

// NewStretch snapshots g's all-pairs distances. It costs O(n·m) time and
// O(n²) memory, so callers bound n. The snapshot runs serially: Stretch
// is built once per experiment trial, and trials already fan out across
// every CPU — nesting the sweep's own fan-out inside the trial pool
// would oversubscribe the machine without any wall-clock gain.
func NewStretch(g *graph.Graph) *Stretch {
	return &Stretch{base: g.AllDistancesWorkers(1)}
}

// Result is a stretch measurement over the surviving node pairs.
type Result struct {
	Max          float64 // max over pairs of d_now/d_orig; +Inf if any pair separated
	Mean         float64 // mean ratio over connected surviving pairs
	Pairs        int     // surviving pairs considered
	Disconnected int     // surviving pairs with no current path
}

// Measure computes the stretch of cur: for every pair of alive nodes that
// were connected originally, the ratio of their current distance to their
// original distance. Pairs now disconnected contribute +Inf to Max and
// are tallied in Disconnected. A graph with fewer than two alive nodes
// yields the identity stretch 1.
func (st *Stretch) Measure(cur *graph.Graph) Result {
	res := Result{Max: 1}
	var sum float64
	alive := cur.AliveNodes()
	if len(st.dist) != cur.N() {
		st.dist = make([]int32, cur.N()) // the graph grew (churn): regrow once
	}
	for _, u := range alive {
		if u >= len(st.base) {
			continue // joined after the snapshot: no original distance
		}
		st.queue = cur.BFSInto(u, st.dist, st.queue)
		du := st.dist
		for _, v := range alive {
			if v <= u || v >= len(st.base) {
				continue
			}
			orig := st.base[u][v]
			if orig <= 0 {
				continue // originally disconnected or identical
			}
			res.Pairs++
			if du[v] < 0 {
				res.Disconnected++
				res.Max = math.Inf(1)
				continue
			}
			ratio := float64(du[v]) / float64(orig)
			if ratio > res.Max {
				res.Max = ratio
			}
			sum += ratio
		}
	}
	if ok := res.Pairs - res.Disconnected; ok > 0 {
		res.Mean = sum / float64(ok)
	} else if res.Pairs == 0 {
		res.Mean = 1
	}
	return res
}

// DegreeStats summarizes the alive degree distribution of g.
type DegreeStats struct {
	Max  int
	Mean float64
}

// Degrees computes degree statistics over alive nodes.
func Degrees(g *graph.Graph) DegreeStats {
	ds := DegreeStats{}
	alive := g.AliveNodes()
	if len(alive) == 0 {
		return ds
	}
	sum := 0
	for _, v := range alive {
		d := g.Degree(v)
		sum += d
		if d > ds.Max {
			ds.Max = d
		}
	}
	ds.Mean = float64(sum) / float64(len(alive))
	return ds
}
