package metrics

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestStretchIdentity(t *testing.T) {
	g := gen.Ring(6)
	st := NewStretch(g)
	res := st.Measure(g)
	if res.Max != 1 || res.Mean != 1 {
		t.Errorf("unchanged graph stretch = %+v, want 1/1", res)
	}
	if res.Pairs != 15 || res.Disconnected != 0 {
		t.Errorf("pairs = %d/%d, want 15/0", res.Pairs, res.Disconnected)
	}
}

func TestStretchDetour(t *testing.T) {
	// Ring of 6: deleting one node and healing with the "long way round"
	// doubles some distances. Simulate by removing node 0 outright: pairs
	// through 0 now take the long path.
	g := gen.Ring(6)
	st := NewStretch(g)
	cur := g.Clone()
	cur.RemoveNode(0)
	res := st.Measure(cur)
	// 1 and 5 were at distance 2 via node 0; now distance 4 around.
	if res.Max != 2 {
		t.Errorf("max stretch = %v, want 2", res.Max)
	}
	if res.Disconnected != 0 {
		t.Error("ring minus one node stays connected")
	}
}

func TestStretchDisconnection(t *testing.T) {
	g := gen.Line(5)
	st := NewStretch(g)
	cur := g.Clone()
	cur.RemoveNode(2)
	res := st.Measure(cur)
	if !math.IsInf(res.Max, 1) {
		t.Errorf("max stretch = %v, want +Inf", res.Max)
	}
	if res.Disconnected != 4 {
		t.Errorf("disconnected pairs = %d, want 4 ({0,1}×{3,4})", res.Disconnected)
	}
	// Mean is over still-connected pairs only.
	if res.Mean != 1 {
		t.Errorf("mean = %v, want 1 (surviving pairs unchanged)", res.Mean)
	}
}

func TestStretchShortcutsCanShrink(t *testing.T) {
	// Healing edges can shorten paths; Max stays >= 1 by definition but
	// Mean can dip below 1.
	g := gen.Line(4)
	st := NewStretch(g)
	cur := g.Clone()
	cur.AddEdge(0, 3)
	res := st.Measure(cur)
	if res.Max != 1 {
		t.Errorf("max = %v, want 1", res.Max)
	}
	if res.Mean >= 1 {
		t.Errorf("mean = %v, want < 1 with a shortcut", res.Mean)
	}
}

func TestStretchTinyGraphs(t *testing.T) {
	g := graph.New(1)
	res := NewStretch(g).Measure(g)
	if res.Max != 1 || res.Mean != 1 || res.Pairs != 0 {
		t.Errorf("singleton stretch = %+v", res)
	}
	empty := graph.New(0)
	res = NewStretch(empty).Measure(empty)
	if res.Max != 1 {
		t.Errorf("empty stretch = %+v", res)
	}
}

func TestDegrees(t *testing.T) {
	g := gen.Star(5)
	ds := Degrees(g)
	if ds.Max != 4 {
		t.Errorf("max degree = %d, want 4", ds.Max)
	}
	if want := 8.0 / 5.0; math.Abs(ds.Mean-want) > 1e-12 {
		t.Errorf("mean degree = %v, want %v", ds.Mean, want)
	}
	if ds := Degrees(graph.New(0)); ds.Max != 0 || ds.Mean != 0 {
		t.Error("empty degree stats should be zero")
	}
}
