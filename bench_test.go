// Benchmarks regenerating every artifact of the paper's evaluation (one
// benchmark per figure/table; see DESIGN.md's experiment index). Each
// reports the figure's headline numbers as custom metrics so `go test
// -bench=.` output records the reproduced values next to the timings.
//
// Sizes here are kept moderate so the full suite runs in seconds; use
// cmd/figures for paper-scale sweeps.
package repro

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

var benchSizes = []int{64, 128}

const benchTrials = 3

// cellF extracts a numeric cell from a generated table.
func cellF(b *testing.B, t *stats.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

// BenchmarkFig8MaxDegreeIncrease regenerates Figure 8 (E1): maximum
// degree increase per healer under the NeighborOfMax attack.
func BenchmarkFig8MaxDegreeIncrease(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig8(benchSizes, benchTrials, 1)
	}
	last := len(benchSizes) - 1
	b.ReportMetric(cellF(b, tab, last, 1), "GraphHeal_δ")
	b.ReportMetric(cellF(b, tab, last, 2), "BinTree_δ")
	b.ReportMetric(cellF(b, tab, last, 3), "DASH_δ")
	b.ReportMetric(cellF(b, tab, last, 4), "SDASH_δ")
}

// BenchmarkFig8SweepN512 regenerates Figure 8 at the paper's largest
// size only (n=512, 3 trials): the end-to-end sweep benchmark used to
// track the experiment engine's wall-clock across PRs. Run with
// -benchtime=1x; one iteration is already a full four-healer sweep.
func BenchmarkFig8SweepN512(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig8([]int{512}, 3, 1)
	}
	b.ReportMetric(cellF(b, tab, 0, 3), "DASH_δ")
}

// BenchmarkFig9aIDChanges regenerates Figure 9(a) (E2): worst per-node
// ID-change counts (all strategies stay below log₂ n).
func BenchmarkFig9aIDChanges(b *testing.B) {
	var tabA *stats.Table
	for i := 0; i < b.N; i++ {
		tabA, _ = experiments.Fig9(benchSizes, benchTrials, 2)
	}
	last := len(benchSizes) - 1
	b.ReportMetric(cellF(b, tabA, last, 3), "DASH_idchg")
	b.ReportMetric(math.Log2(float64(benchSizes[last])), "log2n")
}

// BenchmarkFig9bMessages regenerates Figure 9(b) (E3): worst per-node
// component-maintenance traffic.
func BenchmarkFig9bMessages(b *testing.B) {
	var tabB *stats.Table
	for i := 0; i < b.N; i++ {
		_, tabB = experiments.Fig9(benchSizes, benchTrials, 3)
	}
	last := len(benchSizes) - 1
	b.ReportMetric(cellF(b, tabB, last, 1), "GraphHeal_msgs")
	b.ReportMetric(cellF(b, tabB, last, 3), "DASH_msgs")
}

// BenchmarkFig10Stretch regenerates Figure 10 (E4): stretch under the
// MaxNode attack.
func BenchmarkFig10Stretch(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Fig10(benchSizes, benchTrials, 4)
	}
	last := len(benchSizes) - 1
	b.ReportMetric(cellF(b, tab, last, 3), "DASH_stretch")
	b.ReportMetric(cellF(b, tab, last, 4), "SDASH_stretch")
}

// BenchmarkThm1Bounds regenerates the Theorem 1 check (E6): DASH measured
// against its three proved bounds.
func BenchmarkThm1Bounds(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Thm1(benchSizes, benchTrials, 5)
	}
	last := len(benchSizes) - 1
	b.ReportMetric(cellF(b, tab, last, 1), "measured_δ")
	b.ReportMetric(cellF(b, tab, last, 2), "bound_δ")
}

// BenchmarkThm2LowerBound regenerates the Theorem 2 demonstration (E5):
// LEVELATTACK forcing the 2-degree-bounded LineHeal to δ ≥ depth.
func BenchmarkThm2LowerBound(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Thm2(2, []int{2, 3, 4}, 6)
	}
	b.ReportMetric(cellF(b, tab, 2, 2), "LineHeal_δ_depth4")
	b.ReportMetric(cellF(b, tab, 2, 3), "DASH_δ_depth4")
}

// BenchmarkAblationComponentTracking regenerates the §3.1 ablation (E7):
// component-blind healing leaks degree on trees.
func BenchmarkAblationComponentTracking(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Ablation(benchSizes, benchTrials, 7)
	}
	last := len(benchSizes) - 1
	b.ReportMetric(cellF(b, tab, last, 1), "DegreeHeal_δ")
	b.ReportMetric(cellF(b, tab, last, 4), "DASH_δ")
}

// BenchmarkSDASHSurrogation regenerates the §4.6.2 study (E8).
func BenchmarkSDASHSurrogation(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.SDASHBehaviour([]int{benchSizes[0]}, benchTrials, 8)
	}
	b.ReportMetric(cellF(b, tab, 0, 1), "surrogation_rate")
}

// BenchmarkBatchDeletions regenerates the footnote-1 extension table.
func BenchmarkBatchDeletions(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Batch(64, []int{1, 4}, 2, 9)
	}
	b.ReportMetric(cellF(b, tab, 1, 1), "batch4_peak_δ")
}

// BenchmarkTopologyIndependence regenerates the §1-claim table: DASH on
// six different initial topologies.
func BenchmarkTopologyIndependence(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Topologies(64, 2, 10)
	}
	b.ReportMetric(cellF(b, tab, 0, 2), "BA_peak_δ")
	b.ReportMetric(cellF(b, tab, 5, 2), "hypercube_peak_δ")
}

// BenchmarkOracleAblation regenerates the open-problem ablation: the
// message price of ID propagation vs a component oracle.
func BenchmarkOracleAblation(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.OracleAblation([]int{64}, 2, 11)
	}
	b.ReportMetric(cellF(b, tab, 0, 3), "DASH_msgs")
	b.ReportMetric(cellF(b, tab, 0, 4), "oracle_msgs")
}

// BenchmarkChurn regenerates the churn table: joins interleaved with
// attacks.
func BenchmarkChurn(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Churn(48, 96, 2, 12)
	}
	b.ReportMetric(cellF(b, tab, 2, 2), "heavy_churn_peak_δ")
}

// BenchmarkCutVertexStress regenerates the articulation-point stress
// table.
func BenchmarkCutVertexStress(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.CutVertexStress([]int{64}, 2, 13)
	}
	b.ReportMetric(cellF(b, tab, 0, 1), "DASH_peak_δ")
}

// --- micro-benchmarks of the core operations ---

// benchHealFullRun measures a complete delete-all run of one healer on a
// fresh BA graph per iteration.
func benchHealFullRun(b *testing.B, h Healer) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := gen.BarabasiAlbert(256, 3, rng.New(uint64(i)))
		s := core.NewState(g, rng.New(uint64(i)+1))
		att := attack.NeighborOfMax{}
		r := rng.New(uint64(i) + 2)
		b.StartTimer()
		for s.G.NumAlive() > 0 {
			s.DeleteAndHeal(att.Next(s, r), h)
		}
	}
}

func BenchmarkFullRunDASH(b *testing.B)      { benchHealFullRun(b, DASH) }
func BenchmarkFullRunSDASH(b *testing.B)     { benchHealFullRun(b, SDASH) }
func BenchmarkFullRunBinTree(b *testing.B)   { benchHealFullRun(b, BinaryTreeHeal) }
func BenchmarkFullRunGraphHeal(b *testing.B) { benchHealFullRun(b, GraphHeal) }

// BenchmarkHealStepDASH isolates the per-deletion healing cost on a
// large hub (the worst single-round case).
func BenchmarkHealStepDASH(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := core.NewState(gen.Star(512), rng.New(uint64(i)))
		b.StartTimer()
		s.DeleteAndHeal(0, core.DASH{})
	}
}

// BenchmarkStretchSnapshot measures one APSP stretch measurement, the
// dominant cost of Figure 10 regeneration.
func BenchmarkStretchSnapshot(b *testing.B) {
	g := gen.BarabasiAlbert(256, 3, rng.New(1))
	st := metrics.NewStretch(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Measure(g)
	}
}

// BenchmarkDistributedRound measures one full distributed healing round
// (death notices through quiescence) on a live goroutine network (E9).
func BenchmarkDistributedRound(b *testing.B) {
	g := gen.BarabasiAlbert(b.N+8, 3, rng.New(1))
	s := core.NewState(g.Clone(), rng.New(2))
	ids := make([]uint64, g.N())
	for v := range ids {
		ids[v] = s.InitID(v)
	}
	nw := dist.New(g, ids)
	defer nw.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Kill(i)
	}
}

// BenchmarkSimTrial measures the experiment engine end to end.
func BenchmarkSimTrial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim.Run(sim.Config{
			NewGraph:  experiments.BAGraph(128),
			NewAttack: NeighborOfMax,
			Healer:    DASH,
			Trials:    1,
			Seed:      uint64(i),
		})
	}
}
